package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stamp"
)

// ParseKey parses a memo key (Spec.Key) back into the Spec that produced
// it. Keys are the durable identity of persisted results, so loading
// validates every stored key parses AND round-trips (parsed.Key() == key):
// a key that references an unknown system, workload, or cache name — or
// carries suffixes in a non-canonical order — comes from a different build
// of the matrix and must not be served as a current result.
//
// ParseKey does not recover the runner-internal defaults a key omits; the
// returned Spec reproduces exactly the key it was parsed from.
func ParseKey(key string) (Spec, error) {
	parts := strings.Split(key, "|")
	if len(parts) < 5 {
		return Spec{}, fmt.Errorf("harness: key %q: want at least system|workload|threads|cache|seed", key)
	}
	sys, err := SystemByName(parts[0])
	if err != nil {
		return Spec{}, fmt.Errorf("harness: key %q: %w", key, err)
	}
	wl, err := stamp.ByName(parts[1])
	if err != nil {
		return Spec{}, fmt.Errorf("harness: key %q: %w", key, err)
	}
	threads, err := strconv.Atoi(parts[2])
	if err != nil || threads <= 0 {
		return Spec{}, fmt.Errorf("harness: key %q: bad thread count %q", key, parts[2])
	}
	var cache CacheConfig
	switch parts[3] {
	case TypicalCache().Name:
		cache = TypicalCache()
	case SmallCache().Name:
		cache = SmallCache()
	case LargeCache().Name:
		cache = LargeCache()
	default:
		return Spec{}, fmt.Errorf("harness: key %q: unknown cache config %q", key, parts[3])
	}
	seed, err := strconv.ParseUint(parts[4], 10, 64)
	if err != nil {
		return Spec{}, fmt.Errorf("harness: key %q: bad seed %q", key, parts[4])
	}
	s := Spec{System: sys, Workload: wl, Threads: threads, Cache: cache, Seed: seed}
	for _, p := range parts[5:] {
		switch {
		case p == "nofuse":
			s.DisableFusion = true
		case strings.HasPrefix(p, "par"):
			if s.Par, err = atoiPositive(p[len("par"):]); err != nil {
				return Spec{}, fmt.Errorf("harness: key %q: bad suffix %q", key, p)
			}
		case strings.HasPrefix(p, "cores"):
			if s.Cores, err = atoiPositive(p[len("cores"):]); err != nil {
				return Spec{}, fmt.Errorf("harness: key %q: bad suffix %q", key, p)
			}
		case strings.HasPrefix(p, "topo"):
			s.Topo = p[len("topo"):]
			if s.Topo == "" {
				return Spec{}, fmt.Errorf("harness: key %q: empty topo suffix", key)
			}
		case strings.HasPrefix(p, "grid"):
			w, h, ok := strings.Cut(p[len("grid"):], "x")
			if !ok {
				return Spec{}, fmt.Errorf("harness: key %q: bad suffix %q", key, p)
			}
			if s.MeshW, err = atoiPositive(w); err != nil {
				return Spec{}, fmt.Errorf("harness: key %q: bad suffix %q", key, p)
			}
			if s.MeshH, err = atoiPositive(h); err != nil {
				return Spec{}, fmt.Errorf("harness: key %q: bad suffix %q", key, p)
			}
		case strings.HasPrefix(p, "cl"):
			if s.ClusterSize, err = atoiPositive(p[len("cl"):]); err != nil {
				return Spec{}, fmt.Errorf("harness: key %q: bad suffix %q", key, p)
			}
		default:
			return Spec{}, fmt.Errorf("harness: key %q: unknown suffix %q", key, p)
		}
	}
	return s, nil
}

func atoiPositive(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("non-positive %d", n)
	}
	return n, nil
}
