package harness

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// TestGetSingleflight launches many concurrent Gets for the same spec and
// checks exactly one execution happens; the rest share its result.
func TestGetSingleflight(t *testing.T) {
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	r := NewRunner(1)
	r.exec = func(Spec) (*stats.Run, error) {
		executions.Add(1)
		close(started)
		<-release // hold the first caller inside Execute so the rest pile up
		return &stats.Run{}, nil
	}
	spec := Spec{System: mustSystem("Baseline"), Workload: tinyProfile(), Threads: 2, Cache: TypicalCache()}

	var wg sync.WaitGroup
	results := make([]*stats.Run, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Get(spec)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("spec executed %d times, want 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Gets returned distinct result objects")
		}
	}
}

// TestGetErrorNotMemoized checks a failed execution is retried by the next
// Get rather than cached.
func TestGetErrorNotMemoized(t *testing.T) {
	var calls int
	r := NewRunner(1)
	r.exec = func(Spec) (*stats.Run, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return &stats.Run{}, nil
	}
	spec := Spec{System: mustSystem("Baseline"), Workload: tinyProfile(), Threads: 2, Cache: TypicalCache()}
	if _, err := r.Get(spec); err == nil {
		t.Fatal("first Get should fail")
	} else if !strings.Contains(err.Error(), spec.keyWithSeed(r.Seed)) {
		t.Fatalf("error %q does not name the failing spec", err)
	}
	if _, err := r.Get(spec); err != nil {
		t.Fatalf("second Get should retry and succeed: %v", err)
	}
	if calls != 2 {
		t.Fatalf("executed %d times, want 2", calls)
	}
}

// TestRunAllAggregatesErrors checks RunAll reports every failing spec (not
// just the first) with its key, via errors.Join.
func TestRunAllAggregatesErrors(t *testing.T) {
	sentinel := errors.New("boom")
	r := NewRunner(7)
	r.Workers = 4
	r.exec = func(s Spec) (*stats.Run, error) {
		if s.Threads != 2 {
			return nil, sentinel
		}
		return &stats.Run{}, nil
	}
	var specs []Spec
	for _, th := range []int{2, 4, 8} {
		specs = append(specs, Spec{System: mustSystem("Baseline"), Workload: tinyProfile(), Threads: th, Cache: TypicalCache()})
	}
	err := r.RunAll(specs)
	if err == nil {
		t.Fatal("RunAll should fail")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("aggregate %v does not wrap the cause", err)
	}
	for _, th := range []int{4, 8} {
		s := specs[0]
		s.Threads = th
		if !strings.Contains(err.Error(), s.keyWithSeed(r.Seed)) {
			t.Fatalf("aggregate %q missing failing spec %s", err, s.keyWithSeed(r.Seed))
		}
	}
	// The successful spec must still be retrievable.
	if _, err := r.Get(specs[0]); err != nil {
		t.Fatalf("successful spec lost: %v", err)
	}
}

// keyWithSeed is the key RunAll/Get stamp into error messages (the runner
// overrides the spec's seed with its own).
func (s Spec) keyWithSeed(seed uint64) string {
	s.Seed = seed
	return s.key()
}
