// Package repro is a from-scratch Go reproduction of "LockillerTM:
// Enhancing Performance Lower Bounds in Best-Effort Hardware Transactional
// Memory" (Wan, Chao, Li, Han — IPPS 2024).
//
// The library lives under internal/: a discrete-event simulator of a
// 32-core tiled CMP (sim, mem, topology, noc, cache, coherence), the
// best-effort HTM and the paper's three mechanisms (htm, priority,
// coherence), an in-order core model (cpu), STAMP-like workloads (stamp),
// the evaluation harness (harness, stats), and the public facade (core).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation section; cmd/lockillerbench renders them as text.
package repro
