#!/bin/sh
# bench_compare.sh — guard against benchmark regressions.
#
# Runs a fresh benchmark sweep (or takes a pre-built results file) and
# compares it against the newest committed BENCH_*.json. A benchmark
# regresses when its ns/op or allocs/op exceeds the baseline by more than
# the budget (default 15%); a benchmark whose baseline is 0 allocs/op must
# stay at 0. Benchmarks present in only one of the two files are tolerated
# and reported explicitly — added ones (no baseline yet) and removed ones
# (baseline only) are named in the output but never fail the run. Exit
# status is 1 on any regression.
#
# Usage: scripts/bench_compare.sh [fresh.json] [budget-pct]
set -eu
cd "$(dirname "$0")/.."

BUDGET="${2:-15}"

BASE=""
for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    BASE="$f"
done
if [ -z "$BASE" ]; then
    echo "bench_compare: no committed BENCH_*.json baseline found" >&2
    exit 2
fi

if [ $# -ge 1 ] && [ -n "$1" ]; then
    FRESH="$1"
    CLEAN=""
else
    FRESH="$(mktemp)"
    CLEAN="$FRESH"
    sh scripts/bench.sh "$FRESH" >/dev/null
fi
trap '[ -n "$CLEAN" ] && rm -f "$CLEAN"' EXIT INT TERM

echo "comparing $FRESH against baseline $BASE (budget ±${BUDGET}%)"

# The JSON is machine-written by bench.sh with one benchmark object per
# line, so a line-oriented awk parse is reliable here.
awk -v budget="$BUDGET" '
function field(line, key,    re, s) {
    re = "\"" key "\": *[-0-9.]+"
    if (match(line, re) == 0) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s
}
FNR == 1 { fileno++ }
/"name":/ {
    name = $0
    sub(/^.*"name": *"/, "", name)
    sub(/".*$/, "", name)
    ns = field($0, "ns_per_op")
    allocs = field($0, "allocs_per_op")
    if (fileno == 1) {
        base_order[++bn] = name
        base_ns[name] = ns
        base_allocs[name] = allocs
    } else {
        order[++n] = name
        new_ns[name] = ns
        new_allocs[name] = allocs
    }
}
END {
    fmt = "%-28s %14s %14s %9s  %s\n"
    printf fmt, "benchmark", "base ns/op", "new ns/op", "delta", "status"
    fail = 0
    added = removed = ""
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in base_ns)) {
            added = added (added == "" ? "" : ", ") name
            printf fmt, name, "-", new_ns[name], "-", "added (no baseline)"
            continue
        }
        d = 100 * (new_ns[name] - base_ns[name]) / base_ns[name]
        status = "ok"
        if (d > budget) { status = "REGRESSION (ns/op)"; fail = 1 }
        if (base_allocs[name] + 0 == 0 && new_allocs[name] + 0 > 0) {
            status = "REGRESSION (allocs: 0 -> " new_allocs[name] ")"
            fail = 1
        } else if (base_allocs[name] + 0 > 0 && \
                   100 * (new_allocs[name] - base_allocs[name]) / base_allocs[name] > budget) {
            status = "REGRESSION (allocs/op)"
            fail = 1
        }
        printf fmt, name, base_ns[name], new_ns[name], sprintf("%+.1f%%", d), status
    }
    for (i = 1; i <= bn; i++) {
        name = base_order[i]
        if (!(name in new_ns)) {
            removed = removed (removed == "" ? "" : ", ") name
            printf fmt, name, base_ns[name], "-", "-", "removed (baseline only)"
        }
    }
    if (added != "")   printf "added benchmarks:   %s\n", added
    if (removed != "") printf "removed benchmarks: %s\n", removed
    exit fail
}' "$BASE" "$FRESH"
