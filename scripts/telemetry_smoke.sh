#!/bin/sh
# telemetry_smoke.sh — end-to-end observability check.
#
# Runs one small contended simulation with every telemetry surface enabled
# (metrics sampling, Chrome trace, conflict provenance, noc event trace),
# twice with the same seed, then asserts:
#
#   1. both runs produce byte-identical metrics and trace files
#      (simulated-clock determinism survives full instrumentation);
#   2. the metrics JSON passes ValidateMetrics + ValidateSortedKeys;
#   3. the Chrome trace JSON passes ValidateChromeTrace + ValidateSortedKeys
#      (i.e. it is loadable in ui.perfetto.dev);
#   4. the CSV export renders without error.
#
# Fully offline; `make telemetry-smoke` and CI run this.
set -eu
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

SIM="go run ./cmd/lockillersim -system LockillerTM -workload intruder -threads 4 -seed 1 -interval 5000 -trace noc"

echo "telemetry-smoke: run 1..." >&2
$SIM -metrics "$TMP/m1.json" -chrometrace "$TMP/t1.json" >"$TMP/out1.txt"
echo "telemetry-smoke: run 2 (same seed)..." >&2
$SIM -metrics "$TMP/m2.json" -chrometrace "$TMP/t2.json" >"$TMP/out2.txt"

cmp "$TMP/m1.json" "$TMP/m2.json" || {
    echo "telemetry-smoke: FAIL: metrics JSON differs across same-seed runs" >&2
    exit 1
}
cmp "$TMP/t1.json" "$TMP/t2.json" || {
    echo "telemetry-smoke: FAIL: chrome trace differs across same-seed runs" >&2
    exit 1
}
# The "wrote <path>" lines name different files per run; everything else
# (stats, provenance report, sample count) must match byte-for-byte.
grep -v ': wrote ' "$TMP/out1.txt" >"$TMP/out1.flt"
grep -v ': wrote ' "$TMP/out2.txt" >"$TMP/out2.flt"
cmp "$TMP/out1.flt" "$TMP/out2.flt" || {
    echo "telemetry-smoke: FAIL: stdout (provenance report) differs across same-seed runs" >&2
    exit 1
}

echo "telemetry-smoke: validating schemas..." >&2
go run ./cmd/telemetryck -metrics "$TMP/m1.json" -chrometrace "$TMP/t1.json"

echo "telemetry-smoke: CSV export..." >&2
$SIM -metrics "$TMP/m.csv" >/dev/null
head -1 "$TMP/m.csv" | grep -q '^cycle,' || {
    echo "telemetry-smoke: FAIL: CSV export missing cycle header" >&2
    exit 1
}

echo "telemetry-smoke: OK (metrics $(wc -c <"$TMP/m1.json") bytes, trace $(wc -c <"$TMP/t1.json") bytes)" >&2
