#!/bin/sh
# obs_smoke.sh — end-to-end run-ledger + self-profiler check.
#
# Runs a small sweep (Fig. 11 quick scope) twice with the same seed, each
# writing a redacted ledger, then asserts:
#
#   1. both sweeps produce byte-identical redacted ledgers (with the
#      host-tagged fields zeroed, a ledger is a pure function of the spec
#      set and seed);
#   2. the ledger JSONL passes the schema validator (telemetryck -ledger:
#      schema version, sorted keys per record, records sorted by key);
#   3. a single -obs -ledger simulation prints the engine self-profile and
#      its one-record ledger validates too.
#
# Fully offline; `make obs-smoke` and the nightly CI job run this.
set -eu
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

SWEEP="go run ./cmd/lockillerbench -fig 11 -quick -seed 1 -obs-redact"

echo "obs-smoke: sweep 1..." >&2
$SWEEP -ledger "$TMP/l1.jsonl" >/dev/null
echo "obs-smoke: sweep 2 (same seed)..." >&2
$SWEEP -ledger "$TMP/l2.jsonl" >/dev/null

cmp "$TMP/l1.jsonl" "$TMP/l2.jsonl" || {
    echo "obs-smoke: FAIL: redacted ledgers differ across same-seed sweeps" >&2
    exit 1
}

echo "obs-smoke: validating ledger schema..." >&2
go run ./cmd/telemetryck -ledger "$TMP/l1.jsonl"

echo "obs-smoke: single run with self-profiler..." >&2
go run ./cmd/lockillersim -system LockillerTM -workload kmeans -threads 4 -seed 1 \
    -obs -ledger "$TMP/single.jsonl" >"$TMP/out.txt"
grep -q 'engine self-profile' "$TMP/out.txt" || {
    echo "obs-smoke: FAIL: -obs printed no self-profile report" >&2
    exit 1
}
go run ./cmd/telemetryck -ledger "$TMP/single.jsonl"

echo "obs-smoke: OK ($(wc -l <"$TMP/l1.jsonl") sweep records)" >&2
