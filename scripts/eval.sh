#!/bin/sh
# eval.sh — run the full evaluation sweep (`lockillerbench -all -seed 1`,
# the EXPERIMENTS.md numbers) and capture stdout/stderr under out/.
#
# Usage: scripts/eval.sh [outdir]     (default: out)
set -eu
cd "$(dirname "$0")/.."
OUTDIR="${1:-out}"
mkdir -p "$OUTDIR"

echo "running full evaluation sweep (this takes a while)..." >&2
go run ./cmd/lockillerbench -all -seed 1 \
    >"$OUTDIR/eval_full.txt" 2>"$OUTDIR/eval_full.err"
echo "wrote $OUTDIR/eval_full.txt and $OUTDIR/eval_full.err" >&2
