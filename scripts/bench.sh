#!/bin/sh
# bench.sh — run the scheduler and full-simulator benchmarks and write the
# results (ns/op, B/op, allocs/op per benchmark) as JSON.
#
# Usage: scripts/bench.sh [output.json]     (default: BENCH_1.json)
set -eu
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_1.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

echo "running engine micro-benchmarks..." >&2
go test -run '^$' -benchmem \
    -bench '^(BenchmarkTypedEventRing|BenchmarkTypedEventHeap|BenchmarkClosureEventRing|BenchmarkMixedHorizon)$' \
    ./internal/sim >"$TMP"

echo "running protocol-table dispatch benchmark..." >&2
go test -run '^$' -benchmem \
    -bench '^BenchmarkProtocolDispatch$' \
    ./internal/coherence/proto >>"$TMP"

echo "running component and full-sim benchmarks..." >&2
go test -run '^$' -benchmem \
    -bench '^(BenchmarkEngineEvents|BenchmarkNoCSend|BenchmarkFusedHitChain|BenchmarkSimulatorThroughput|BenchmarkParallelSimulatorThroughput|BenchmarkTelemetryDisabledOverhead|BenchmarkTelemetryEnabledOverhead|BenchmarkObsDisabledOverhead|BenchmarkObsEnabledOverhead)$' \
    . >>"$TMP"

echo "running machine-reuse benchmarks..." >&2
go test -run '^$' -benchmem \
    -bench '^(BenchmarkMachineConstruction|BenchmarkMachineReset|BenchmarkSweepThroughput)$' \
    . >>"$TMP"

echo "running core-count scaling benchmark..." >&2
go test -run '^$' -benchmem \
    -bench '^BenchmarkScalingCores$' \
    . >>"$TMP"

GOVER="$(go version | awk '{print $3}')"
awk -v gover="$GOVER" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")      ns = $(i-1)
        else if ($i == "B/op")      bytes = $(i-1)
        else if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns != "") {
        n++
        entries[n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                             name, ns, bytes, allocs)
    }
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", gover
    for (i = 1; i <= n; i++)
        printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}' "$TMP" >"$OUT"

echo "wrote $OUT" >&2
cat "$OUT"
