# Standard developer entry points. The repo is plain `go build`-able; this
# file just names the common invocations.

GO ?= go

# Pinned versions for the external linters CI installs. Bump deliberately —
# new staticcheck releases can add checks that fail an unchanged tree.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build vet lint staticcheck vulncheck test test-race test-short bench bench-compare telemetry-smoke obs-smoke figures eval clean

all: vet lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (determinism + pool-ownership invariants + the
# crosstile shared-state inventory enforced against internal/sim/
# crosstile_registry.txt). See DESIGN.md "Determinism & pooling rules" and
# §12 for what each pass enforces and how to waive a finding.
lint:
	$(GO) run ./cmd/lockillerlint ./...

# Machine-readable diagnostics for CI and tooling (same analyzers as lint).
lint-json:
	$(GO) run ./cmd/lockillerlint -json ./...

# Regenerate the crosstile registry after a deliberate shared-state change;
# the nightly drift job requires the committed file to be byte-identical to
# a fresh run.
crosstile-registry:
	$(GO) run ./cmd/lockillerlint -analyzers crosstile -crosstile-write-registry ./...

# External linters. These download a tool, so they are CI-only targets on
# machines with network access; `make lint` stays fully offline.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test:
	$(GO) test ./...

# Short test set under the race detector (CI runs this; the full matrix
# under -race is slow).
test-race:
	$(GO) test -race -short ./...

test-short:
	$(GO) test -short ./...

# Run the scheduler + full-simulator benchmarks and write BENCH_8.json
# (ns/op, B/op, allocs/op per benchmark). BENCH_1.json is the pre-refactor
# baseline, BENCH_2.json the table-driven protocol engine, BENCH_3.json the
# telemetry layer, BENCH_4.json the event-fusion fast path + allocation
# cleanup, BENCH_5.json the sharded tile-parallel engine (adds
# ParallelSimulatorThroughput; compare it against SimulatorThroughput in the
# same file — the ratio is only meaningful on a 4+-CPU host), BENCH_6.json
# the scalable-machine refactor (adds ScalingCores/{32,64,128,256}, whose
# metric of record is ns per simulated core-cycle), BENCH_7.json the
# host-side observability layer (adds ObsDisabledOverhead/
# ObsEnabledOverhead), BENCH_8.json machine reuse (adds
# MachineConstruction/MachineReset — reset must stay >= 5x cheaper than
# construction — and SweepThroughput/reuse={off,on}, the end-to-end sweep
# wall with and without the machine pool). Compare SimulatorThroughput
# across files, and within a file compare the Telemetry/ObsDisabledOverhead
# pair against SimulatorThroughput (< 2% budget for disabled telemetry
# hooks, <= 1% and zero extra allocs for disabled probes).
# scripts/bench_compare.sh diffs a fresh run against the newest committed
# BENCH_*.json.
bench:
	sh scripts/bench.sh BENCH_8.json

# Regression guard: fresh bench run compared against the newest committed
# BENCH_*.json (±15% per benchmark; FusedHitChain must stay 0 allocs/op).
bench-compare:
	sh scripts/bench_compare.sh

# Short end-to-end observability check: run one small simulation with all
# telemetry enabled twice with the same seed, assert byte-identical output,
# and validate the Chrome-trace and metrics JSON schemas (sorted keys,
# monotonic sample clock). Offline; runs in CI.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Host-side observability check: a small same-seed sweep run twice must
# produce byte-identical redacted run ledgers, the ledger JSONL must pass
# the schema validator, and -obs must print the engine self-profile.
# Offline; runs in the nightly CI.
obs-smoke:
	sh scripts/obs_smoke.sh

# Regenerate the paper's figures (quick scope).
figures:
	$(GO) run ./cmd/lockillerbench -all -quick

# Full evaluation sweep (the EXPERIMENTS.md numbers). Writes to out/,
# which is gitignored — eval output is derived data, not source.
eval:
	sh scripts/eval.sh

clean:
	$(GO) clean ./...
	rm -f cpu.out mem.out
	rm -rf out
