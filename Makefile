# Standard developer entry points. The repo is plain `go build`-able; this
# file just names the common invocations.

GO ?= go

.PHONY: all build vet test test-race test-short bench figures clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short test set under the race detector (CI runs this; the full matrix
# under -race is slow).
test-race:
	$(GO) test -race -short ./...

test-short:
	$(GO) test -short ./...

# Run the scheduler + full-simulator benchmarks and write BENCH_1.json
# (ns/op, B/op, allocs/op per benchmark).
bench:
	sh scripts/bench.sh BENCH_1.json

# Regenerate the paper's figures (quick scope).
figures:
	$(GO) run ./cmd/lockillerbench -all -quick

clean:
	$(GO) clean ./...
	rm -f cpu.out mem.out
