// Command lockillersim runs one (system, workload, threads, cache)
// simulation and prints its statistics: execution cycles, commit rate,
// abort causes, and the execution-time breakdown.
//
// Usage:
//
//	lockillersim -system LockillerTM -workload intruder -threads 8 [-cache small] [-seed 1]
//	lockillersim -obs                # profile the PDES engine and print the report
//	lockillersim -ledger run.jsonl   # write this run's ledger record (JSONL)
//	lockillersim -results out/cache  # check/fill the content-addressed result cache
//	lockillersim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/stamp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	system := flag.String("system", "Baseline", "Table II system name")
	workload := flag.String("workload", "intruder", "STAMP workload name")
	threads := flag.Int("threads", 2, "thread count (2..32)")
	cacheName := flag.String("cache", "typical", "cache config: typical, small, large")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list systems and workloads, then exit")
	traceCats := flag.String("trace", "", "record events: comma-separated categories (proto,conflict,tx,htmlock,lock,noc) or 'all'")
	traceN := flag.Int("tracen", 200, "number of trace events to retain")
	showTraffic := flag.Bool("traffic", false, "print the memory-subsystem traffic summary")
	showTransitions := flag.Bool("transitions", false, "print the protocol-table transition heat profile")
	threeLevel := flag.Bool("threelevel", false, "use the MESI-Three-Level-HTM organization (private middle cache)")
	exportPath := flag.String("export", "", "write the generated thread programs as JSON and exit")
	importPath := flag.String("import", "", "replay thread programs from a JSON file instead of generating them")
	metricsPath := flag.String("metrics", "", "write sampled metrics time-series + conflict provenance (JSON, or CSV series if the path ends in .csv)")
	interval := flag.Uint64("interval", 10_000, "telemetry sampling interval in simulated cycles")
	chromePath := flag.String("chrometrace", "", "write a Chrome-trace-event (Perfetto) JSON trace to this path")
	hotLines := flag.Int("hot-lines", 16, "number of hottest conflict lines to report")
	fuse := flag.String("fuse", "on", "event-fusion fast path: on or off (results are identical; off is a diagnostic mode)")
	par := flag.String("par", "off", "sharded tile-parallel engine: worker count N, or 'off' for the sequential oracle (results are bit-for-bit identical either way)")
	cores := flag.Int("cores", 0, "scale the machine to N cores on a near-square grid (0 = Table I's 32)")
	topo := flag.String("topo", "", "interconnect topology: mesh, torus, or cmesh (default: Table I's mesh)")
	cluster := flag.Int("cluster", 0, "two-level directory cluster size (0 = flat directory)")
	resultsDir := flag.String("results", "", "content-addressed result cache directory shared with lockillerbench (checked before running, stored after; ignored for instrumented or custom runs)")
	obsFlag := flag.Bool("obs", false, "profile the PDES engine (host-side) and print the self-profile report")
	ledgerPath := flag.String("ledger", "", "write this run's ledger record to the file as JSONL")
	obsRedact := flag.Bool("obs-redact", false, "zero host-derived ledger fields (wall, allocator) for byte-stable diffing")
	flag.Parse()

	var disableFusion bool
	switch *fuse {
	case "on":
	case "off":
		disableFusion = true
	default:
		fatal(fmt.Errorf("unknown -fuse value %q (want on or off)", *fuse))
	}
	var parN int
	if *par != "off" {
		n, err := strconv.Atoi(*par)
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -par value %q (want a worker count or 'off')", *par))
		}
		parN = n
	}

	if *list {
		fmt.Println("Systems (Table II):")
		for _, s := range harness.Systems() {
			fmt.Printf("  %-18s %s\n", s.Name, s.Desc)
		}
		fmt.Println("Workloads (STAMP):")
		for _, w := range stamp.Workloads() {
			fmt.Printf("  %s\n", w.Name)
		}
		return
	}

	sys, err := harness.SystemByName(*system)
	if err != nil {
		fatal(err)
	}
	wl, err := stamp.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	var cache harness.CacheConfig
	switch *cacheName {
	case "typical":
		cache = harness.TypicalCache()
	case "small":
		cache = harness.SmallCache()
	case "large":
		cache = harness.LargeCache()
	default:
		fatal(fmt.Errorf("unknown cache config %q", *cacheName))
	}

	var tracer *trace.Tracer
	if *traceCats != "" {
		sel := *traceCats
		if sel == "all" {
			sel = ""
		}
		cats, err := trace.ParseCategories(sel)
		if err != nil {
			fatal(err)
		}
		tracer = trace.New(*traceN, cats)
	}
	switch *topo {
	case "", "mesh", "torus", "cmesh":
	default:
		fatal(fmt.Errorf("unknown -topo value %q (want mesh, torus, or cmesh)", *topo))
	}
	spec := harness.Spec{System: sys, Workload: wl, Threads: *threads, Cache: cache, Seed: *seed,
		DisableFusion: disableFusion, Par: parN,
		Cores: *cores, Topo: *topo, ClusterSize: *cluster}
	if *exportPath != "" {
		f, err := os.Create(*exportPath)
		if err != nil {
			fatal(err)
		}
		progs := stamp.Programs(wl, *threads, *seed)
		if err := cpu.ExportPrograms(f, progs, sys.HTM.MaxRetries+1); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d thread programs to %s\n", len(progs), *exportPath)
		return
	}
	var tel *telemetry.Telemetry
	if *metricsPath != "" || *chromePath != "" {
		tel = telemetry.New(telemetry.Config{
			Interval: *interval,
			HotLines: *hotLines,
			Chrome:   *chromePath != "",
		})
	}
	var prof *obs.Profiler
	if *obsFlag {
		prof = obs.NewProfiler()
	}
	// The disk cache only serves the plain execution path: instrumented or
	// custom runs produce side outputs (traces, telemetry, profiles) a
	// cached stats.Run cannot reproduce, and import/threelevel runs are not
	// captured by the spec key at all.
	var disk *harness.DiskCache
	cacheable := *importPath == "" && !*threeLevel && tracer == nil && tel == nil && prof == nil
	if *resultsDir != "" && cacheable {
		if disk, err = harness.OpenDiskCache(*resultsDir); err != nil {
			fatal(err)
		}
	}
	var run *stats.Run
	cacheSrc := ""
	timer := obs.StartTimer()
	mem := obs.TakeMemSnapshot()
	switch {
	case *importPath != "" || *threeLevel:
		run, err = runCustom(spec, tracer, tel, prof, *importPath, *threeLevel)
	default:
		if disk != nil {
			if cached, ok := disk.Load(spec.Key(), *seed); ok {
				run, cacheSrc = cached, "disk"
			}
		}
		if run == nil {
			opts := harness.ExecOptions{Tracer: tracer, Telemetry: tel}
			if prof != nil { // never wrap a nil *Profiler in the interface
				opts.Probe = prof
			}
			run, err = harness.ExecuteWith(spec, opts)
			if err == nil && disk != nil {
				if serr := disk.Store(spec.Key(), *seed, run); serr != nil {
					fmt.Fprintln(os.Stderr, "lockillersim:", serr)
				}
			}
		}
	}
	wall := timer.Elapsed()
	if *ledgerPath != "" {
		// Written even when the run failed, so error records land in the
		// ledger with their error field set.
		led := &obs.Ledger{Redact: *obsRedact}
		led.Append(harness.LedgerRecord(spec, run, err, wall, mem.Delta(), cacheSrc))
		if werr := writeFile(*ledgerPath, func(f *os.File) error {
			_, e := led.WriteTo(f)
			return e
		}); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		fatal(err)
	}

	engineDesc := "sequential"
	if parN > 0 {
		engineDesc = fmt.Sprintf("sharded par=%d", parN)
	}
	if cacheSrc != "" {
		fmt.Printf("cached    : %s (%s)\n", cacheSrc, *resultsDir)
	}
	fmt.Printf("system    : %s\nworkload  : %s\nthreads   : %d\ncache     : %s\nengine    : %s\n",
		sys.Name, wl.Name, *threads, cache.Name, engineDesc)
	if *cores > 0 || *topo != "" || *cluster > 0 {
		p := spec.MachineParams()
		kind := p.Topo
		if kind == "" {
			kind = "mesh"
		}
		fmt.Printf("machine   : %d cores, %s %dx%d", p.Cores, kind, p.MeshW, p.MeshH)
		if p.ClusterSize > 0 {
			fmt.Printf(", two-level directory (clusters of %d)", p.ClusterSize)
		}
		fmt.Println()
	}
	fmt.Printf("cycles    : %d\nsections  : %d\ncommitrate: %.4f\n",
		run.ExecCycles, run.Sections(), run.CommitRate())
	total, by := run.TotalAborts()
	fmt.Printf("aborts    : %d", total)
	for c := htm.CauseNone + 1; int(c) <= htm.NumCauses; c++ {
		if n := by[c]; n > 0 {
			fmt.Printf("  %s=%d", c, n)
		}
	}
	fmt.Println()
	bd := run.Breakdown()
	fmt.Printf("breakdown :")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Printf("  %s=%.3f", c, bd[c])
	}
	fmt.Println()
	if *showTraffic {
		run.Traffic.Render(os.Stdout)
	}
	if *showTransitions {
		fmt.Println("transition heat profile:")
		stats.RenderTransitionProfile(os.Stdout, run.Transitions)
	}
	if tracer != nil {
		fmt.Println("trace:")
		tracer.Render(os.Stdout)
	}
	if tel != nil {
		tel.RenderProvenance(os.Stdout, *hotLines)
		if *metricsPath != "" {
			if err := writeFile(*metricsPath, func(f *os.File) error {
				if len(*metricsPath) > 4 && (*metricsPath)[len(*metricsPath)-4:] == ".csv" {
					return tel.WriteMetricsCSV(f)
				}
				return tel.WriteMetricsJSON(f)
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics   : wrote %s (%d samples)\n", *metricsPath, tel.Reg.Samples())
		}
		if *chromePath != "" {
			if err := writeFile(*chromePath, func(f *os.File) error { return tel.WriteChromeTrace(f) }); err != nil {
				fatal(err)
			}
			fmt.Printf("trace file: wrote %s (load in ui.perfetto.dev)\n", *chromePath)
		}
	}
	if prof != nil {
		prof.Render(os.Stdout)
	}
	if *ledgerPath != "" {
		fmt.Printf("ledger    : wrote %s (1 record)\n", *ledgerPath)
	}
}

// writeFile creates path, runs write, and closes it, returning the first
// error encountered.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCustom executes a spec with non-standard machine options (replayed
// programs and/or the three-level protocol organization).
func runCustom(spec harness.Spec, tracer *trace.Tracer, tel *telemetry.Telemetry, prof *obs.Profiler, importPath string, threeLevel bool) (*stats.Run, error) {
	p := spec.MachineParams()
	if threeLevel {
		p.MidSize, p.MidWays = 64*1024, 8
	}
	progs := stamp.Programs(spec.Workload, spec.Threads, spec.Seed)
	if importPath != "" {
		f, err := os.Open(importPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		progs, err = cpu.ImportPrograms(f)
		if err != nil {
			return nil, err
		}
	}
	cfg := cpu.Config{
		Machine: p, HTM: spec.System.HTM, Sync: spec.System.Sync,
		Threads: len(progs), Seed: spec.Seed, Limit: 4_000_000_000, Tracer: tracer,
		Telemetry: tel, DisableFusion: spec.DisableFusion, Par: spec.Par,
	}
	if prof != nil { // never wrap a nil *Profiler in the interface
		cfg.Probe = prof
	}
	if tel != nil {
		tel.Meta = telemetry.Meta{
			System:   spec.System.Name,
			Threads:  len(progs),
			Workload: spec.Workload.Name,
		}
	}
	m := cpu.NewMachine(cfg, spec.System.Name, spec.Workload.Name, progs)
	return m.Run()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lockillersim:", err)
	os.Exit(1)
}
