// Command lockillerlint is the multichecker for the repository's custom
// static-analysis suite. It loads the named packages from source (stdlib-only
// module, no external driver needed) and runs the ten lockiller passes:
//
//	detmap        — order-dependent side effects in map-range loops of
//	                deterministic packages
//	nowallclock   — wall-clock, global rand, env reads, goroutines, channels
//	                in deterministic packages
//	hostclock     — wall-clock reads outside internal/obs anywhere in the
//	                repo, and unguarded obs.EngineProbe callsites
//	poolsafe      — use-after-free / double-free of pooled protocol objects
//	evtalloc      — closure-literal Engine.At/After scheduling on hot paths
//	tabledispatch — raw switches over MsgType in the coherence package that
//	                bypass the protocol transition tables
//	tracehook     — unguarded Tracer.Emit/Emitf or Telemetry hook calls on
//	                hot paths that pay argument evaluation when disabled
//	fusepath      — evL1Done scheduled outside L1.finishHit, breaking the
//	                event-fusion fast path's single-completion-site invariant
//	callgraph     — (library pass, no diagnostics of its own) interprocedural
//	                call graph + per-function summaries shared via Facts
//	crosstile     — every state access reachable from an event-handler root
//	                classified own-tile / cross-tile / global-immutable and
//	                diffed against internal/sim/crosstile_registry.txt
//
// Usage:
//
//	lockillerlint [-analyzers a,b] [-json] [-unused-waivers]
//	              [-crosstile-inventory out.json] [-crosstile-write-registry]
//	              [packages]
//
// Packages default to ./... resolved against the enclosing module. Exit
// status is 1 when any diagnostic is reported, 2 on load errors, matching
// go vet. See DESIGN.md "Determinism & pooling rules" for the invariants and
// the //lockiller: waiver syntax, and DESIGN.md §12 for the crosstile
// inventory workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/crosstile"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/evtalloc"
	"repro/internal/analysis/fusepath"
	"repro/internal/analysis/hostclock"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/poolsafe"
	"repro/internal/analysis/tabledispatch"
	"repro/internal/analysis/tracehook"
)

var all = []*analysis.Analyzer{
	crosstile.Analyzer,
	detmap.Analyzer,
	evtalloc.Analyzer,
	fusepath.Analyzer,
	hostclock.Analyzer,
	nowallclock.Analyzer,
	poolsafe.Analyzer,
	tabledispatch.Analyzer,
	tracehook.Analyzer,
}

// jsonDiagnostic is the machine-readable diagnostic shape emitted by -json:
// module-relative file path plus 1-based line/column, sorted the same way as
// the plain-text output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as a sorted JSON array on stdout")
	unusedWaivers := flag.Bool("unused-waivers", false, "also report //lockiller: suppression comments that matched no diagnostic (advisory: does not affect exit status)")
	inventoryOut := flag.String("crosstile-inventory", "", "write the crosstile shared-state inventory as JSON to this file")
	writeRegistry := flag.Bool("crosstile-write-registry", false, "regenerate internal/sim/crosstile_registry.txt from the computed inventory and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lockillerlint [-analyzers a,b] [-list] [-json] [-unused-waivers] [-crosstile-inventory out.json] [-crosstile-write-registry] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *names != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "lockillerlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll(patterns)
	if err != nil {
		fatal(err)
	}
	prog, diags, err := analysis.RunAnalyzersProgram(pkgs, analyzers)

	if *writeRegistry {
		if err != nil {
			fatal(err)
		}
		if err := writeRegistryFile(prog); err != nil {
			fatal(err)
		}
		return
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     prog.RelPath(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *inventoryOut != "" {
		if err := writeInventory(prog, *inventoryOut); err != nil {
			fatal(err)
		}
	}
	if *unusedWaivers {
		for _, w := range prog.UnusedWaivers() {
			fmt.Fprintf(os.Stderr, "lockillerlint: unused waiver //%s at %s:%d\n",
				w.Directive, prog.RelPath(w.Pos.Filename), w.Pos.Line)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lockillerlint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// inventoryOf pulls the crosstile inventory computed during the run; it is
// absent when crosstile was not among the analyzers or when the load did not
// include the simulator roots.
func inventoryOf(prog *analysis.Program) (*crosstile.Inventory, error) {
	v, ok := prog.PeekFact(crosstile.InventoryFact)
	if !ok {
		return nil, fmt.Errorf("no crosstile inventory was computed (run the crosstile analyzer over the full module, e.g. ./...)")
	}
	return v.(*crosstile.Inventory), nil
}

func writeInventory(prog *analysis.Program, path string) error {
	inv, err := inventoryOf(prog)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(inv, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeRegistryFile(prog *analysis.Program) error {
	inv, err := inventoryOf(prog)
	if err != nil {
		return err
	}
	path, err := crosstile.RegistryPathFor(prog)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, crosstile.FormatRegistry(inv), 0o644); err != nil {
		return err
	}
	fmt.Printf("lockillerlint: wrote %d entries to %s\n", len(inv.Entries), prog.RelPath(path))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lockillerlint:", err)
	os.Exit(2)
}
