// Command lockillerlint is the multichecker for the repository's custom
// static-analysis suite. It loads the named packages from source (stdlib-only
// module, no external driver needed) and runs the seven lockiller passes:
//
//	detmap        — order-dependent side effects in map-range loops of
//	                deterministic packages
//	nowallclock   — wall-clock, global rand, env reads, goroutines, channels
//	                in deterministic packages
//	poolsafe      — use-after-free / double-free of pooled protocol objects
//	evtalloc      — closure-literal Engine.At/After scheduling on hot paths
//	tabledispatch — raw switches over MsgType in the coherence package that
//	                bypass the protocol transition tables
//	tracehook     — unguarded Tracer.Emit/Emitf or Telemetry hook calls on
//	                hot paths that pay argument evaluation when disabled
//	fusepath      — evL1Done scheduled outside L1.finishHit, breaking the
//	                event-fusion fast path's single-completion-site invariant
//
// Usage:
//
//	lockillerlint [-analyzers a,b] [packages]
//
// Packages default to ./... resolved against the enclosing module. Exit
// status is 1 when any diagnostic is reported, 2 on load errors, matching
// go vet. See DESIGN.md "Determinism & pooling rules" for the invariants and
// the //lockiller: waiver syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/evtalloc"
	"repro/internal/analysis/fusepath"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/poolsafe"
	"repro/internal/analysis/tabledispatch"
	"repro/internal/analysis/tracehook"
)

var all = []*analysis.Analyzer{
	detmap.Analyzer,
	evtalloc.Analyzer,
	fusepath.Analyzer,
	nowallclock.Analyzer,
	poolsafe.Analyzer,
	tabledispatch.Analyzer,
	tracehook.Analyzer,
}

func main() {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lockillerlint [-analyzers a,b] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *names != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "lockillerlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll(patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		fatal(err)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lockillerlint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lockillerlint:", err)
	os.Exit(2)
}
