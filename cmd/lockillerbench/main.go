// Command lockillerbench regenerates the paper's tables and figures.
//
// Usage:
//
//	lockillerbench -fig 7            # regenerate one figure (1,7,8,9,10,11,12,13)
//	lockillerbench -table 1          # print Table I or II
//	lockillerbench -all              # the full evaluation (long)
//	lockillerbench -fig 7 -quick     # narrowed sweep for a fast look
//	lockillerbench -v                # log every completed simulation
//	lockillerbench -fig 7 -cpuprofile cpu.out -memprofile mem.out
//	                                 # profile the run (inspect with go tool pprof)
//	lockillerbench -fig 7 -obs       # stream sweep progress (done/total, ETA) to stderr
//	lockillerbench -fig 7 -ledger runs.jsonl
//	                                 # append one schema-versioned JSONL record per run
//	lockillerbench -fig 7 -par 4 -selfprofile
//	                                 # print the PDES self-profile after the sweep
//	lockillerbench -fig 7 -results out/cache
//	                                 # persistent content-addressed result cache (a
//	                                 # .json path selects the legacy snapshot file)
//	lockillerbench -fig 7 -reuse off # rebuild every machine instead of resetting
//	                                 # pooled ones (bit-identical; diagnostic)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/stamp"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1,7,8,9,10,11,12,13)")
	table := flag.Int("table", 0, "table number to print (1,2)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "narrow the sweep (3 workloads, 3 thread counts)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "log each completed simulation")
	csvOut := flag.Bool("csv", false, "emit machine-readable CSV instead of text")
	chart := flag.Bool("chart", false, "render ASCII charts after the text tables")
	check := flag.Bool("check", false, "evaluate the paper's qualitative claims (PASS/FAIL) and exit")
	scaling := flag.Bool("scaling", false, "run the core-count scaling sweep (threads = cores, 32..256)")
	scalingWl := flag.String("scaling-workload", "intruder", "workload for the -scaling sweep")
	cacheFile := flag.String("results", "", "persist simulation results: a .json path is a snapshot file (loaded first, saved after); any other path is a content-addressed cache directory (e.g. out/cache), written incrementally")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	workers := flag.Int("workers", 0, "parallel simulations (0 = LOCKILLER_WORKERS env, then one per CPU); this is the outer, spec-level budget — divide CPUs between it and any inner -par tile parallelism")
	obsProgress := flag.Bool("obs", false, "stream sweep progress events (done/total, per-spec wall, ETA) to stderr")
	ledgerPath := flag.String("ledger", "", "append one JSONL ledger record per simulation to this file")
	obsRedact := flag.Bool("obs-redact", false, "zero host-derived ledger fields (wall, allocator) for byte-stable diffing")
	selfProfile := flag.Bool("selfprofile", false, "profile the PDES engine itself and print the report after the sweep")
	parN := flag.Int("par", 0, "inner tile-parallel workers per simulation (0 = sequential engine)")
	reuse := flag.String("reuse", "on", "machine reuse across sweep points: on or off (results are bit-identical either way; off rebuilds every machine and exists as a diagnostic escape hatch)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accumulated allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			}
		}()
	}

	r := harness.NewRunner(*seed)
	r.Workers = harness.DefaultWorkers(*workers)
	r.Par = *parN
	switch *reuse {
	case "on":
	case "off":
		r.Reuse = false
	default:
		fmt.Fprintf(os.Stderr, "lockillerbench: unknown -reuse value %q (want on or off)\n", *reuse)
		os.Exit(2)
	}
	if *obsProgress {
		r.Progress = &obs.TextSink{W: os.Stderr}
	}
	if *ledgerPath != "" {
		r.Ledger = &obs.Ledger{Redact: *obsRedact}
		// Written on normal exit, like the results cache below; error paths
		// that os.Exit early drop the partial ledger by design.
		defer func() {
			f, err := os.Create(*ledgerPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
				return
			}
			defer f.Close()
			if _, err := r.Ledger.WriteTo(f); err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "ledger: wrote %d records to %s\n", r.Ledger.Len(), *ledgerPath)
		}()
	}
	if *selfProfile {
		r.Profiler = obs.NewProfiler()
		defer r.Profiler.Render(os.Stderr)
	}
	switch {
	case *cacheFile == "":
	case strings.HasSuffix(*cacheFile, ".json"):
		// Legacy snapshot mode: one JSON file, loaded up front (with
		// per-record key validation) and rewritten on normal exit.
		if f, err := os.Open(*cacheFile); err == nil {
			rep, err := r.Load(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench: ignoring results cache:", err)
			} else {
				fmt.Fprintf(os.Stderr, "results: %s\n", rep)
			}
			f.Close()
		}
		defer func() {
			f, err := os.Create(*cacheFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
				return
			}
			defer f.Close()
			if err := r.Save(f); err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			}
		}()
	default:
		// Content-addressed store: every fresh result is written the
		// moment it finishes, keyed by (key, seed, schema version), so
		// interrupted sweeps lose nothing and repeat sweeps are near-free.
		d, err := harness.OpenDiskCache(*cacheFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			os.Exit(1)
		}
		r.Disk = d
		fmt.Fprintf(os.Stderr, "results: content-addressed cache at %s\n", d.Dir())
	}
	if *verbose {
		r.Log = func(s string) { fmt.Fprintln(os.Stderr, "  run:", s) }
	}

	workloads := stamp.Workloads()
	threads := harness.ThreadCounts
	if *quick {
		workloads = []stamp.Profile{stamp.Intruder(), stamp.Vacation(), stamp.Yada()}
		threads = []int{2, 8, 32}
	}

	switch {
	case *check:
		failed, err := harness.RunChecks(r, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			os.Exit(1)
		}
		if failed > 0 {
			fmt.Printf("%d claim(s) FAILED\n", failed)
			os.Exit(1)
		}
		fmt.Println("all claims PASS")
	case *scaling:
		wl, err := stamp.ByName(*scalingWl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			os.Exit(1)
		}
		cores := harness.ScalingCores
		if *quick {
			cores = []int{32, 64}
		}
		f, err := harness.RunFigScaling(r, wl, cores)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockillerbench:", err)
			os.Exit(1)
		}
		f.Render(os.Stdout)
	case *table == 1:
		harness.RenderTable1(os.Stdout)
	case *table == 2:
		harness.RenderTable2(os.Stdout)
	case *all:
		for _, n := range []int{1, 7, 8, 9, 10, 11, 12, 13} {
			runFig(r, n, workloads, threads, *csvOut, *chart)
		}
	case *fig != 0:
		runFig(r, *fig, workloads, threads, *csvOut, *chart)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFig(r *harness.Runner, n int, workloads []stamp.Profile, threads []int, csvOut, chart bool) {
	var f harness.Figure
	var err error
	switch n {
	case 1:
		f, err = harness.RunFig1(r)
	case 7:
		f, err = harness.RunFig7(r, nil, workloads, threads)
	case 8:
		f, err = harness.RunFig8(r, workloads, threads)
	case 9:
		f, err = harness.RunBreakdown(r, "Fig. 9",
			[]string{"Baseline", "LockillerTM-RWI", "LockillerTM-RWIL"}, workloads, 32)
	case 10:
		f, err = harness.RunFig10(r, workloads)
	case 11:
		f, err = harness.RunBreakdown(r, "Fig. 11",
			[]string{"Baseline", "LockillerTM-RWIL", "LockillerTM"}, workloads, 2)
	case 12:
		f, err = harness.RunFig12(r, workloads, threads)
	case 13:
		f, err = harness.RunFig13(r, workloads, threads)
	default:
		fmt.Fprintf(os.Stderr, "lockillerbench: no figure %d (have 1,7,8,9,10,11,12,13)\n", n)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockillerbench:", err)
		os.Exit(1)
	}
	if csvOut {
		if e, ok := f.(harness.CSVExporter); ok {
			if err := e.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "lockillerbench:", err)
				os.Exit(1)
			}
			return
		}
	}
	f.Render(os.Stdout)
	if chart {
		if c, ok := f.(harness.ChartRenderer); ok {
			c.RenderChart(os.Stdout)
		}
	}
	fmt.Println()
}
