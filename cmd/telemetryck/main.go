// Command telemetryck validates telemetry export files against the schemas
// the telemetry package promises: sorted JSON keys throughout, the metrics
// document shape (monotonic sample clock, equal-length series, required
// rates), and the Chrome-trace-event shape Perfetto accepts.
//
// Usage:
//
//	telemetryck [-metrics file.json] [-chrometrace file.json]
//
// At least one flag is required. Exit status is 1 when any file fails
// validation, with one line per failure on stderr. Used by
// `make telemetry-smoke` to check real exporter output in CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/telemetry"
)

func main() {
	metricsPath := flag.String("metrics", "", "metrics time-series JSON file to validate")
	chromePath := flag.String("chrometrace", "", "Chrome-trace-event JSON file to validate")
	flag.Parse()

	if *metricsPath == "" && *chromePath == "" {
		fmt.Fprintln(os.Stderr, "telemetryck: need -metrics and/or -chrometrace")
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	check := func(path, what string, validate func([]byte) error) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetryck:", err)
			failed = true
			return
		}
		if err := telemetry.ValidateSortedKeys(data); err != nil {
			fmt.Fprintf(os.Stderr, "telemetryck: %s: sorted keys: %v\n", path, err)
			failed = true
		}
		if err := validate(data); err != nil {
			fmt.Fprintf(os.Stderr, "telemetryck: %s: %s schema: %v\n", path, what, err)
			failed = true
		}
		if !failed {
			fmt.Printf("telemetryck: %s: %s ok (%d bytes)\n", path, what, len(data))
		}
	}
	if *metricsPath != "" {
		check(*metricsPath, "metrics", telemetry.ValidateMetrics)
	}
	if *chromePath != "" {
		check(*chromePath, "chrome-trace", telemetry.ValidateChromeTrace)
	}
	if failed {
		os.Exit(1)
	}
}
