// Command telemetryck validates observability export files against the
// schemas their packages promise: the telemetry metrics document (sorted
// JSON keys, monotonic sample clock, equal-length series, required rates),
// the Chrome-trace-event shape Perfetto accepts, and the obs run-ledger
// JSONL shape (schema-versioned, sorted keys per record, records sorted by
// key).
//
// Usage:
//
//	telemetryck [-metrics file.json] [-chrometrace file.json] [-ledger file.jsonl]
//
// At least one flag is required. Exit status is 1 when any file fails
// validation, with one line per failure on stderr. Used by
// `make telemetry-smoke` and `make obs-smoke` to check real exporter
// output in CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	metricsPath := flag.String("metrics", "", "metrics time-series JSON file to validate")
	chromePath := flag.String("chrometrace", "", "Chrome-trace-event JSON file to validate")
	ledgerPath := flag.String("ledger", "", "run-ledger JSONL file to validate")
	flag.Parse()

	if *metricsPath == "" && *chromePath == "" && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "telemetryck: need -metrics, -chrometrace, and/or -ledger")
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	// check reports per-file status: a failure in one file must not
	// suppress the "ok" line of a later, valid one.
	check := func(path, what string, validate func([]byte) error) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetryck:", err)
			failed = true
			return
		}
		ok := true
		if err := telemetry.ValidateSortedKeys(data); err != nil {
			fmt.Fprintf(os.Stderr, "telemetryck: %s: sorted keys: %v\n", path, err)
			ok = false
		}
		if err := validate(data); err != nil {
			fmt.Fprintf(os.Stderr, "telemetryck: %s: %s schema: %v\n", path, what, err)
			ok = false
		}
		if ok {
			fmt.Printf("telemetryck: %s: %s ok (%d bytes)\n", path, what, len(data))
		} else {
			failed = true
		}
	}
	if *metricsPath != "" {
		check(*metricsPath, "metrics", telemetry.ValidateMetrics)
	}
	if *chromePath != "" {
		check(*chromePath, "chrome-trace", telemetry.ValidateChromeTrace)
	}
	if *ledgerPath != "" {
		f, err := os.Open(*ledgerPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetryck:", err)
			failed = true
		} else {
			n, err := obs.ValidateLedger(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetryck: %s: ledger schema: %v\n", *ledgerPath, err)
				failed = true
			} else {
				fmt.Printf("telemetryck: %s: ledger ok (%d records)\n", *ledgerPath, n)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
