// Quickstart: build a tiny transactional workload with the public API and
// compare coarse-grained locking, requester-win best-effort HTM, and the
// full LockillerTM system on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
)

func main() {
	const threads = 32

	// The classic transactional-memory demo: money transfers between
	// shared accounts. Each transaction atomically updates two accounts —
	// the two-line write pattern that makes requester-win HTM prone to
	// friendly fire. The updates are verified functional counters
	// (cpu.RMW), so the run also checks end-to-end atomicity: a lost
	// update anywhere in the protocol would break the final tally.
	const perThread = 100
	layout := mem.NewLayout()
	accounts := layout.Alloc(24)

	programs := make([]cpu.Program, threads)
	for th := 0; th < threads; th++ {
		var prog cpu.Program
		for i := 0; i < perThread; i++ {
			from := accounts.Pick(th*17 + i*13)
			to := accounts.Pick(th*29 + i*7 + 1)
			prog = append(prog,
				cpu.AtomicStatic([]cpu.Op{
					cpu.RMW(from),
					cpu.Compute(30),
					cpu.RMW(to),
				}),
				cpu.Plain([]cpu.Op{cpu.Compute(40)}),
			)
		}
		programs[th] = prog
	}

	var cglCycles uint64
	for _, cfg := range []core.Config{core.CGL(), core.Baseline(), core.LockillerTM()} {
		cfg.Seed = 1
		m, res, err := core.RunMachine(cfg, programs)
		if err != nil {
			panic(err)
		}
		if cfg.Name == "CGL" {
			cglCycles = res.ExecCycles
		}
		var tally uint64
		for i := 0; i < accounts.N; i++ {
			tally += m.CounterValue(accounts.Pick(i))
		}
		fmt.Printf("%-12s  cycles=%-9d commit-rate=%.3f  speedup-vs-CGL=%.2fx  atomic=%v\n",
			cfg.Name, res.ExecCycles, res.CommitRate(),
			float64(cglCycles)/float64(res.ExecCycles),
			tally == uint64(2*threads*perThread))
	}
}
