// HTMLock: lock transactions and HTM transactions running concurrently.
//
// One workload mixes short, disjoint transactions (HTM heaven) with
// occasional giant transactions that always overflow the L1 and must take
// the fallback path. With the classic interface, every fallback execution
// kills all running transactions and serializes the machine; with HTMLock,
// the fallback runs as an irrevocable TL lock transaction that coexists
// with the disjoint HTM transactions, and switchingMode saves the
// overflowing transaction's work in place.
//
//	go run ./examples/htmlock
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stats"
)

func main() {
	const threads = 16
	layout := mem.NewLayout()
	private := make([]mem.Region, threads)
	for i := range private {
		private[i] = layout.Alloc(1024)
	}

	programs := make([]cpu.Program, threads)
	for th := 0; th < threads; th++ {
		var prog cpu.Program
		for i := 0; i < 60; i++ {
			if th == 0 && i%10 == 5 {
				// A giant update: ~600 private lines, guaranteed L1 set
				// overflow -> fallback (or switchingMode rescue).
				var ops []cpu.Op
				for j := 0; j < 600; j++ {
					ops = append(ops, cpu.Write(private[th].Pick(j)))
				}
				prog = append(prog, cpu.AtomicStatic(ops))
			} else {
				// Small disjoint transaction on private data.
				p := private[th]
				prog = append(prog, cpu.AtomicStatic([]cpu.Op{
					cpu.Read(p.Pick(i)), cpu.Compute(10), cpu.Write(p.Pick(i + 64)),
				}))
			}
			prog = append(prog, cpu.Plain([]cpu.Op{cpu.Compute(30)}))
		}
		programs[th] = prog
	}

	fmt.Println("system        cycles     commit  waitlock%  lock%  switchLock%  aborted%")
	for _, cfg := range []core.Config{core.Baseline(), core.HTMLock(), core.LockillerTM()} {
		cfg.Seed = 7
		res, err := core.Run(cfg, programs)
		if err != nil {
			panic(err)
		}
		bd := res.Breakdown()
		fmt.Printf("%-12s  %-9d  %.3f   %5.1f     %5.1f   %5.1f       %5.1f\n",
			cfg.Name, res.ExecCycles, res.CommitRate(),
			100*bd[stats.CatWaitLock], 100*bd[stats.CatLock],
			100*bd[stats.CatSwitchLock], 100*bd[stats.CatAborted])
	}
}
