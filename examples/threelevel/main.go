// Three-level vs two-level: why the paper rebuilt the protocol.
//
// The gem5 HTM baseline the paper started from (MESI-Three-Level-HTM) adds
// a private middle cache per core and flushes L1 lines into it on every
// external request — even plain loads. The paper replaced it with a
// streamlined two-level protocol (§IV-A), keeping transactional capacity
// bounded by the L1 — the best-effort envelope every commercial HTM has.
//
// This example runs the same workloads on both organizations and exposes
// the trade-off: the middle cache absorbs transactional overflows (zero
// capacity aborts, higher commit rate — it effectively changes the
// best-effort capacity limits) while the flush-on-forward design makes
// every producer-consumer handover strictly slower (see the ping-pong
// microbenchmark in internal/coherence's tests). The paper's evaluation
// uses the two-level organization so its capacity-overflow mechanisms
// (HTMLock signatures, switchingMode) are exercised as on real hardware.
//
//	go run ./examples/threelevel
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/stamp"
)

func main() {
	run := func(wl stamp.Profile, threads int, threeLevel bool) {
		cfg := core.Baseline()
		cfg.Seed = 1
		if threeLevel {
			cfg.Name = "Baseline-3L"
			cfg.Machine.MidSize = 64 * 1024 // private 64KB middle cache
			cfg.Machine.MidWays = 8
		}
		res, err := core.Run(cfg, stamp.Programs(wl, threads, 1))
		if err != nil {
			panic(err)
		}
		_, by := res.TotalAborts()
		fmt.Printf("  %-12s cycles=%-9d commit=%.3f of-aborts=%d mid-hits=%d\n",
			cfg.Name, res.ExecCycles, res.CommitRate(), by[htm.CauseOverflow],
			res.Traffic.L1Misses-res.Traffic.MemFetches)
	}

	fmt.Println("vacation, 8 threads (sharing-heavy: two-level wins)")
	run(stamp.Vacation(), 8, false)
	run(stamp.Vacation(), 8, true)

	fmt.Println("labyrinth, 2 threads (overflow-heavy: the middle cache absorbs write sets)")
	run(stamp.Labyrinth(), 2, false)
	run(stamp.Labyrinth(), 2, true)
}
