// Friendly fire: the pathology the recovery mechanism exists to kill.
//
// Two (or more) transactions repeatedly write the same pair of lines in
// opposite orders. Under requester-win, each aborts the other — "a
// transaction is defeated by a transaction it has defeated" — so nobody
// advances and both eventually take the fallback lock. With the recovery
// mechanism + insts-based priority, the restarted loser carries the lowest
// priority and its toxic requests are withdrawn, so the winner commits.
//
//	go run ./examples/friendlyfire
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
)

func main() {
	const threads = 8
	const sections = 150

	// All threads hammer the same two lines, half in each order — maximal
	// friendly-fire pressure.
	a, b := mem.Line(1<<20), mem.Line(1<<20+1)

	programs := make([]cpu.Program, threads)
	for th := 0; th < threads; th++ {
		first, second := a, b
		if th%2 == 1 {
			first, second = b, a
		}
		var prog cpu.Program
		for i := 0; i < sections; i++ {
			prog = append(prog,
				cpu.AtomicStatic([]cpu.Op{
					cpu.Write(first), cpu.Compute(30), cpu.Write(second), cpu.Compute(30),
				}),
				cpu.Plain([]cpu.Op{cpu.Compute(20)}),
			)
		}
		programs[th] = prog
	}

	fmt.Println("system        commit-rate  aborts  fallback-runs  cycles")
	for _, cfg := range []core.Config{
		core.Baseline(),
		core.Recovery(htm.SelfAbort),
		core.Recovery(htm.RetryLater),
		core.Recovery(htm.WaitWakeup),
	} {
		cfg.Seed = 42
		res, err := core.Run(cfg, programs)
		if err != nil {
			panic(err)
		}
		total, _ := res.TotalAborts()
		var lockRuns uint64
		for _, c := range res.Cores {
			lockRuns += c.LockRuns
		}
		fmt.Printf("%-12s  %.3f        %-6d  %-13d  %d\n",
			cfg.Name, res.CommitRate(), total, lockRuns, res.ExecCycles)
	}
}
