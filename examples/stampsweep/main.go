// STAMP sweep: run one STAMP-like workload across all Table II systems and
// thread counts, printing a speedup matrix — a miniature of the paper's
// Fig. 7 for a single workload.
//
//	go run ./examples/stampsweep [workload]
package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/stamp"
)

func main() {
	name := "intruder"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	wl, err := stamp.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := harness.NewRunner(1)
	threads := []int{2, 8, 32}

	fmt.Printf("speedup vs CGL on %s (typical cache)\n", wl.Name)
	fmt.Printf("%-18s", "system")
	for _, t := range threads {
		fmt.Printf(" %5dT", t)
	}
	fmt.Println()
	for _, sys := range harness.Systems() {
		if sys.Name == "CGL" {
			continue
		}
		fmt.Printf("%-18s", sys.Name)
		for _, t := range threads {
			sp, err := r.Speedup(sys, wl, t, harness.TypicalCache())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf(" %5.2fx", sp)
		}
		fmt.Println()
	}
}
