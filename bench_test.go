// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure, plus ablations for the design choices DESIGN.md calls out.
//
// Each figure benchmark runs its sweep once per b.N iteration on a
// narrowed scope (so `go test -bench=.` terminates in minutes) and reports
// the figure's headline quantities as custom metrics. The full paper-scale
// sweeps are produced by cmd/lockillerbench (see EXPERIMENTS.md); set
// LOCKILLER_FULL=1 to run the benchmarks at full scope too.
package repro

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/priority"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func full() bool { return os.Getenv("LOCKILLER_FULL") == "1" }

// benchWorkloads returns the figure-benchmark scope.
func benchWorkloads() []stamp.Profile {
	if full() {
		return stamp.Workloads()
	}
	return []stamp.Profile{stamp.Intruder(), stamp.Vacation(), stamp.Yada()}
}

func benchThreads() []int {
	if full() {
		return harness.ThreadCounts
	}
	return []int{2, 8}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTable1(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTable2(io.Discard)
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunFig1(r)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64 = 1e9
		for _, sp := range f.Speedup {
			if sp < worst {
				worst = sp
			}
		}
		b.ReportMetric(worst, "worst-speedup-x")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunFig7(r, nil, benchWorkloads(), benchThreads())
		if err != nil {
			b.Fatal(err)
		}
		_, worstLk := f.MinSpeedup("LockillerTM", len(f.Threads)-1)
		_, worstBase := f.MinSpeedup("Baseline", len(f.Threads)-1)
		b.ReportMetric(worstLk, "lockiller-min-speedup-x")
		b.ReportMetric(worstBase, "baseline-min-speedup-x")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunFig8(r, benchWorkloads(), benchThreads())
		if err != nil {
			b.Fatal(err)
		}
		base := f.Rate["Baseline"]
		rwi := f.Rate["LockillerTM-RWI"]
		var mb, mr float64
		for i := range base {
			mb += base[i]
			mr += rwi[i]
		}
		b.ReportMetric(mr/mb, "rwi-commit-rate-gain-x")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunBreakdown(r, "Fig. 9",
			[]string{"Baseline", "LockillerTM-RWI", "LockillerTM-RWIL"}, benchWorkloads(), 32)
		if err != nil {
			b.Fatal(err)
		}
		_ = f
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunFig10(r, benchWorkloads())
		if err != nil {
			b.Fatal(err)
		}
		// HTMLock must eliminate mutex aborts (the paper's key claim).
		var mutexShare float64
		for _, wl := range f.Workloads {
			mutexShare += f.Share["LockillerTM-RWIL"][wl][htm.CauseMutex]
		}
		b.ReportMetric(mutexShare, "rwil-mutex-share")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunBreakdown(r, "Fig. 11",
			[]string{"Baseline", "LockillerTM-RWIL", "LockillerTM"}, benchWorkloads(), 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = f
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunFig12(r, benchWorkloads(), benchThreads())
		if err != nil {
			b.Fatal(err)
		}
		ob, ol := f.Headline()
		b.ReportMetric(ob, "over-baseline-x")
		b.ReportMetric(ol, "over-losa-x")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		f, err := harness.RunFig13(r, benchWorkloads(), benchThreads())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MaxOverBaseline["small"], "small-max-over-baseline-x")
	}
}

// --- Ablations ----------------------------------------------------------

// ablate runs one workload/thread point under a modified HTM config and
// reports cycles.
func ablate(b *testing.B, mod func(*harness.SystemDef), threads int) {
	b.Helper()
	wl := stamp.Intruder()
	for i := 0; i < b.N; i++ {
		sys, _ := harness.SystemByName("LockillerTM")
		if mod != nil {
			mod(&sys)
		}
		run, err := harness.Execute(harness.Spec{
			System: sys, Workload: wl, Threads: threads,
			Cache: harness.TypicalCache(), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.ExecCycles), "cycles")
		b.ReportMetric(run.CommitRate(), "commit-rate")
	}
}

// BenchmarkAblationPriority compares the priority policies behind the
// recovery mechanism (paper §III-A: insts-based vs progression vs static).
func BenchmarkAblationPriority(b *testing.B) {
	b.Run("insts-based", func(b *testing.B) { ablate(b, nil, 16) })
	b.Run("progression", func(b *testing.B) {
		ablate(b, func(s *harness.SystemDef) { s.HTM.Priority = priority.Progression{} }, 16)
	})
	b.Run("static", func(b *testing.B) {
		ablate(b, func(s *harness.SystemDef) { s.HTM.Priority = priority.Static{Value: 1} }, 16)
	})
}

// BenchmarkAblationRejectPolicy compares the three rejected-request
// policies (Table II's RAI/RRI/RWI distinction) on the full system.
func BenchmarkAblationRejectPolicy(b *testing.B) {
	for _, p := range []htm.RejectPolicy{htm.SelfAbort, htm.RetryLater, htm.WaitWakeup} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			ablate(b, func(s *harness.SystemDef) { s.HTM.RejectPolicy = p }, 16)
		})
	}
}

// BenchmarkAblationSignature sweeps the LLC overflow-signature size
// (false-positive pressure vs hardware cost).
func BenchmarkAblationSignature(b *testing.B) {
	for _, bits := range []int{256, 1024, 2048, 8192} {
		bits := bits
		b.Run(byteSize(bits), func(b *testing.B) {
			wl := stamp.Labyrinth() // signature-heavy workload
			for i := 0; i < b.N; i++ {
				sys, _ := harness.SystemByName("LockillerTM")
				sys.HTM.SignatureBits = bits
				run, err := harness.Execute(harness.Spec{
					System: sys, Workload: wl, Threads: 8,
					Cache: harness.TypicalCache(), Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(run.ExecCycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationNoC compares the contention-modeling NoC against a
// perfect (fixed-latency) network.
func BenchmarkAblationNoC(b *testing.B) {
	run := func(b *testing.B, perfect bool) {
		wl := stamp.VacationHigh()
		for i := 0; i < b.N; i++ {
			sys, _ := harness.SystemByName("LockillerTM")
			p := coherence.DefaultParams()
			p.NoC.Perfect = perfect
			cfg := cpu.Config{Machine: p, HTM: sys.HTM, Sync: sys.Sync, Threads: 16, Seed: 1, Limit: 4_000_000_000}
			m := cpu.NewMachine(cfg, sys.Name, wl.Name, stamp.Programs(wl, 16, 1))
			res, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ExecCycles), "cycles")
		}
	}
	b.Run("contended", func(b *testing.B) { run(b, false) })
	b.Run("perfect", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationProtocolLevels compares the paper's streamlined
// MESI-Two-Level-HTM against the MESI-Three-Level-HTM organization it
// replaced (private middle cache, flush-on-forward; §IV-A).
func BenchmarkAblationProtocolLevels(b *testing.B) {
	run := func(b *testing.B, mid bool) {
		wl := stamp.Vacation()
		for i := 0; i < b.N; i++ {
			sys, _ := harness.SystemByName("Baseline")
			p := coherence.DefaultParams()
			if mid {
				p.MidSize, p.MidWays = 64*1024, 8
			}
			cfg := cpu.Config{Machine: p, HTM: sys.HTM, Sync: sys.Sync, Threads: 8, Seed: 1, Limit: 4_000_000_000}
			m := cpu.NewMachine(cfg, sys.Name, wl.Name, stamp.Programs(wl, 8, 1))
			res, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ExecCycles), "cycles")
			b.ReportMetric(res.CommitRate(), "commit-rate")
		}
	}
	b.Run("two-level", func(b *testing.B) { run(b, false) })
	b.Run("three-level", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPlacement compares packed vs spread thread placement on
// the mesh (the paper pins thread i to core i).
func BenchmarkAblationPlacement(b *testing.B) {
	run := func(b *testing.B, pl cpu.Placement) {
		wl := stamp.Intruder()
		for i := 0; i < b.N; i++ {
			sys, _ := harness.SystemByName("LockillerTM")
			cfg := cpu.Config{Machine: coherence.DefaultParams(), HTM: sys.HTM, Sync: sys.Sync,
				Threads: 8, Seed: 1, Limit: 4_000_000_000, Placement: pl}
			m := cpu.NewMachine(cfg, sys.Name, wl.Name, stamp.Programs(wl, 8, 1))
			res, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.ExecCycles), "cycles")
		}
	}
	b.Run("packed", func(b *testing.B) { run(b, cpu.PlacePacked) })
	b.Run("spread", func(b *testing.B) { run(b, cpu.PlaceSpread) })
}

// BenchmarkAblationRetryBudget sweeps TME_MAX_RETRIES.
func BenchmarkAblationRetryBudget(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			ablate(b, func(s *harness.SystemDef) { s.HTM.MaxRetries = n }, 16)
		})
	}
}

// --- Component micro-benchmarks ------------------------------------------

func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkNoCSend(b *testing.B) {
	e := sim.NewEngine()
	net := noc.New(e, topology.NewMesh(4, 8), noc.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(i%32, (i*7)%32, noc.DataFlits, func() {})
		if i%1024 == 0 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

func BenchmarkSignatureAdd(b *testing.B) {
	s := htm.NewSignature(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(mem.Line(i))
		if i%4096 == 0 {
			s.Clear()
		}
	}
}

// BenchmarkScalingCores measures the simulator's cost per simulated
// core-cycle as the machine grows (DESIGN.md §13): same workload and
// thread count at every point, so the sweep isolates what an idle-or-busy
// tile costs. The metric of record is ns/core-cycle — flat across the
// sweep means machine size adds nothing beyond the extra tiles; machines
// above 64 cores run the two-level directory (clusters of 16), matching
// the harness's ScalingSpec shape.
func BenchmarkScalingCores(b *testing.B) {
	wl := stamp.Intruder()
	sys, _ := harness.SystemByName("LockillerTM")
	for _, cores := range []int{32, 64, 128, 256} {
		cores := cores
		b.Run(fmt.Sprint(cores), func(b *testing.B) {
			var cycles uint64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				s := harness.Spec{System: sys, Workload: wl, Threads: 8,
					Cache: harness.TypicalCache(), Seed: 1, Cores: cores}
				if cores > 64 {
					s.ClusterSize = 16
				}
				res, err := harness.Execute(s)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.ExecCycles
			}
			elapsed := float64(time.Since(start).Nanoseconds())
			b.ReportMetric(elapsed/(float64(cycles)*float64(cores)), "ns/core-cycle")
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
		})
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// End-to-end simulator speed: simulated cycles per wall second.
	wl := stamp.Kmeans()
	sys, _ := harness.SystemByName("LockillerTM")
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		p := coherence.DefaultParams()
		cfg := cpu.Config{Machine: p, HTM: sys.HTM, Sync: sys.Sync, Threads: 8, Seed: 1, Limit: 4_000_000_000}
		m := cpu.NewMachine(cfg, sys.Name, wl.Name, stamp.Programs(wl, 8, 1))
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecCycles
		events += m.Engine.Executed()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkParallelSimulatorThroughput is BenchmarkSimulatorThroughput on
// the sharded tile-parallel engine (DESIGN.md §11) at 4 workers — same
// workload, same bit-identical results, different engine structure. The
// sequential/parallel ratio is only meaningful when the host grants the
// process 4+ CPUs; on fewer cores the sharded engine measures pure
// coordination overhead (see DESIGN.md §11 for the recorded outcome).
func BenchmarkParallelSimulatorThroughput(b *testing.B) {
	wl := stamp.Kmeans()
	sys, _ := harness.SystemByName("LockillerTM")
	var cycles, events, spans uint64
	for i := 0; i < b.N; i++ {
		p := coherence.DefaultParams()
		cfg := cpu.Config{Machine: p, HTM: sys.HTM, Sync: sys.Sync, Threads: 8, Seed: 1, Limit: 4_000_000_000, Par: 4}
		m := cpu.NewMachine(cfg, sys.Name, wl.Name, stamp.Programs(wl, 8, 1))
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecCycles
		events += m.Engine.Executed()
		spans += m.Engine.ParSpans()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(spans)/float64(b.N), "spans/op")
}

// BenchmarkFusedHitChain measures the steady-state per-op cost of the
// event-fusion fast path (DESIGN.md §10): a single thread streaming compute
// ops and guaranteed L1 hits, the exact shape fuseOps executes inline
// without touching the event queue. The program is built as repeated chunks
// sharing one ops backing array, so setup cost stays O(1) in b.N and the
// steady state is pinned at 0 allocs/op — any allocation that appears here
// is a regression on the fused chain itself.
func BenchmarkFusedHitChain(b *testing.B) {
	const lines = 64   // working set: one line per L1 set, fits trivially
	const chunk = 4096 // ops per section; section overhead amortizes away
	base := mem.Line(1 << 21)
	warm := make([]cpu.Op, lines)
	for i := range warm {
		warm[i] = cpu.Write(base + mem.Line(i)) // fill to E/M: later ops all hit
	}
	body := make([]cpu.Op, chunk)
	for i := range body {
		switch i % 4 {
		case 0, 2:
			body[i] = cpu.Compute(1)
		case 1:
			body[i] = cpu.Read(base + mem.Line(i%lines))
		default:
			body[i] = cpu.Write(base + mem.Line((i+7)%lines))
		}
	}
	prog := cpu.Program{cpu.Plain(warm)}
	for done := 0; done < b.N; done += chunk {
		prog = append(prog, cpu.Plain(body))
	}
	cfg := cpu.Config{Machine: coherence.DefaultParams(), Threads: 1, Seed: 1, Limit: 40_000_000_000}
	m := cpu.NewMachine(cfg, "bench", "fused-hit-chain", []cpu.Program{prog})
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
}

// telemetryBenchSpec is the BenchmarkSimulatorThroughput machine point
// (kmeans, LockillerTM, 8 threads, seed 1) expressed as a harness spec, so
// the overhead pair below differs from the throughput benchmark only in
// which telemetry value rides along.
func telemetryBenchSpec(b *testing.B) harness.Spec {
	sys, err := harness.SystemByName("LockillerTM")
	if err != nil {
		b.Fatal(err)
	}
	return harness.Spec{
		System: sys, Workload: stamp.Kmeans(),
		Threads: 8, Cache: harness.TypicalCache(), Seed: 1,
	}
}

func BenchmarkTelemetryDisabledOverhead(b *testing.B) {
	// The same run as BenchmarkSimulatorThroughput with telemetry nil: every
	// hook site takes its disabled branch. Compare ns/op against
	// SimulatorThroughput within one BENCH file — the disabled hooks have a
	// < 2% budget.
	spec := telemetryBenchSpec(b)
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.ExecuteInstrumented(spec, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecCycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

func BenchmarkTelemetryEnabledOverhead(b *testing.B) {
	// Full observability on (sampling, Chrome recording, provenance) at the
	// default interval: the price of actually watching, for the DESIGN.md
	// interval/overhead trade-off table.
	spec := telemetryBenchSpec(b)
	var cycles, samples uint64
	for i := 0; i < b.N; i++ {
		tel := telemetry.New(telemetry.Config{Interval: 10_000, Chrome: true})
		res, err := harness.ExecuteInstrumented(spec, nil, tel)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecCycles
		samples += uint64(tel.Reg.Samples())
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
}

func BenchmarkObsDisabledOverhead(b *testing.B) {
	// The same run as BenchmarkSimulatorThroughput with no EngineProbe
	// attached: every probe callsite takes its nil-guard branch (one pointer
	// test per event). Compare against SimulatorThroughput within one BENCH
	// file — the disabled probes have a <= 1% runtime budget and must add
	// zero allocations (allocs/op here equals SimulatorThroughput's).
	spec := telemetryBenchSpec(b)
	b.ReportAllocs()
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.ExecuteWith(spec, harness.ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecCycles
		events += res.EventsExecuted
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func BenchmarkObsEnabledOverhead(b *testing.B) {
	// The self-profiler on: two host-clock reads plus a histogram update per
	// event — the price of actually profiling, recorded for the DESIGN.md
	// §14 trade-off discussion.
	spec := telemetryBenchSpec(b)
	b.ReportAllocs()
	var cycles, observed uint64
	for i := 0; i < b.N; i++ {
		p := obs.NewProfiler()
		res, err := harness.ExecuteWith(spec, harness.ExecOptions{Probe: p})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecCycles
		observed += p.Events()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(float64(observed)/float64(b.N), "events/op")
}

// reuseBenchSpec is the machine-reuse benchmark point: the full Table I
// machine (32 cores, typical cache) under the paper's headline system, the
// shape whose construction cost the reuse path amortizes.
func reuseBenchSpec() harness.Spec {
	sys, _ := harness.SystemByName("LockillerTM")
	return harness.Spec{System: sys, Workload: stamp.Kmeans(), Threads: 8,
		Cache: harness.TypicalCache(), Seed: 1}
}

// BenchmarkMachineConstruction is the cost Reset avoids: building one
// Table I machine from nothing (caches, directory, NoC, cores, programs).
func BenchmarkMachineConstruction(b *testing.B) {
	spec := reuseBenchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := harness.NewMachineFor(spec, harness.ExecOptions{})
		if m == nil {
			b.Fatal("no machine")
		}
	}
}

// BenchmarkMachineReset measures cpu.Machine.Reset on the same shape.
// Reset cost is shape-proportional (generation bumps plus fixed per-core
// loops), not dirty-state-proportional, so reset-after-reset iterations
// measure the true per-sweep-point cost. The DESIGN.md §15 contract is
// that this stays >= 5x cheaper than BenchmarkMachineConstruction.
func BenchmarkMachineReset(b *testing.B) {
	spec := reuseBenchSpec()
	m := harness.NewMachineFor(spec, harness.ExecOptions{})
	progs := stamp.Programs(spec.Workload, spec.Threads, spec.Seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset(spec.Seed, spec.System.Name, spec.Workload.Name, progs)
	}
}

// BenchmarkSweepThroughput runs a small multi-workload sweep through one
// Runner per iteration, reuse on and off — the end-to-end form of the
// construction-vs-reset trade: with reuse on, every spec after the first
// of each shape runs on a reset machine instead of a fresh build.
func BenchmarkSweepThroughput(b *testing.B) {
	// The `lockillerbench -fig 13 -quick` shape: four systems and three
	// light workloads over threads {2, 8, 32} on the small and large cache
	// points. Each (system, threads, cache) shape is constructed once and
	// reset for the other two workloads, so 48 of the 72 specs skip
	// construction — and the 32-thread shapes, whose machines are the most
	// expensive to build, are where reset pays the most.
	sysNames := []string{"CGL", "Baseline", "LosaTM-SAFU", "LockillerTM"}
	wls := []stamp.Profile{stamp.Intruder(), stamp.Kmeans(), stamp.SSCA2()}
	var specs []harness.Spec
	for _, sn := range sysNames {
		sys, _ := harness.SystemByName(sn)
		for _, wl := range wls {
			for _, th := range []int{2, 8, 32} {
				for _, c := range []harness.CacheConfig{harness.SmallCache(), harness.LargeCache()} {
					specs = append(specs, harness.Spec{System: sys, Workload: wl,
						Threads: th, Cache: c, Seed: 1})
				}
			}
		}
	}
	for _, reuse := range []bool{false, true} {
		name := "reuse=off"
		if reuse {
			name = "reuse=on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := harness.NewRunner(1)
				r.Workers = 1 // serialize so the reuse delta is not masked by idle cores
				r.Reuse = reuse
				if err := r.RunAll(specs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(specs)), "specs/op")
		})
	}
}

// --- tiny helpers (stdlib only, no fmt in hot paths) ---------------------

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func byteSize(bits int) string { return itoa(bits) + "b" }
